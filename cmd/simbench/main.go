// Command simbench measures the host-side performance of the simulation
// kernel on pinned workloads: events per host second, heap allocations
// per event, and host nanoseconds per simulated context switch. It is
// the perf harness behind `make bench`: scripts/bench.sh runs it and
// records the numbers in BENCH_sim.json, carrying the previous baseline
// forward so the kernel's host-performance trajectory is tracked across
// PRs.
//
// Every workload is fixed (fixed seed, fixed event count, fixed process
// population), so two runs on the same host measure the same work; the
// virtual-time behaviour of the kernel is pinned separately by the
// byte-identical-replay gates. This tool measures host cost only.
//
// Usage:
//
//	simbench [-events N] [-reps N] [-o file] [-baseline BENCH_sim.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ufsclust/internal/prefetch"
	"ufsclust/internal/runner"
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
)

// Metrics is the host cost of one pinned workload.
type Metrics struct {
	Events         int64   `json:"events"`
	HostNs         int64   `json:"host_ns"`
	EventsPerSec   float64 `json:"events_per_sec"`
	Allocs         uint64  `json:"allocs"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	NsPerSwitch    float64 `json:"ns_per_switch,omitempty"`
}

// Workloads is one full measurement pass.
type Workloads struct {
	// TimerStorm is the headline pinned workload for the events/sec and
	// allocs/event acceptance numbers: 64 self-rescheduling After
	// callbacks, no process switches, pure event-queue throughput.
	TimerStorm Metrics `json:"timer_storm"`
	// ContextSwitch: 4 processes in a Sleep(1us) round-robin; every
	// event is a full scheduler handoff, so NsPerSwitch is the cost of
	// parking one process and resuming the next.
	ContextSwitch Metrics `json:"context_switch"`
	// Pingpong: two processes alternating WaitQ wake/block, the
	// blocking-primitive path (WakeOne + Block) rather than the timer
	// path.
	Pingpong Metrics `json:"waitq_pingpong"`
	// ParallelScale: GOMAXPROCS independent timer-storm sims driven by
	// internal/runner; aggregate events/sec across all cores.
	ParallelScale Metrics `json:"parallel_scale"`
	// TelemetryEmit: Bus.Emit with no subscriber — the overhead every
	// instrumented hot path (disk serve, driver strategy) pays when
	// nobody is listening. The acceptance number is AllocsPerEvent = 0.
	TelemetryEmit Metrics `json:"telemetry_emit"`
	// ReadAhead: the adaptive prefetch policy's decision path — Trigger
	// calls with live Limits over 64 hot files, with periodic collapses
	// mixed in. Every clustered getpage that reaches the trigger point
	// pays this; the acceptance number is near-zero allocations per
	// decision once the per-file detectors exist.
	ReadAhead Metrics `json:"readahead"`
}

// Report is the BENCH_sim.json schema.
type Report struct {
	Tool       string     `json:"tool"`
	GoVersion  string     `json:"go_version"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	EventTotal int64      `json:"event_total"`
	Current    Workloads  `json:"current"`
	Baseline   *Workloads `json:"baseline,omitempty"`
	Speedup    *Speedup   `json:"speedup,omitempty"`
}

// Speedup compares Current against Baseline (ratios > 1 mean the
// current kernel is better).
type Speedup struct {
	TimerStormEventsPerSec float64 `json:"timer_storm_events_per_sec"`
	TimerStormAllocsRatio  float64 `json:"timer_storm_allocs_per_event_old_over_new"`
	SwitchNsRatio          float64 `json:"context_switch_ns_old_over_new"`
	PingpongNsRatio        float64 `json:"waitq_pingpong_ns_old_over_new"`
	ParallelEventsPerSec   float64 `json:"parallel_scale_events_per_sec"`
}

func main() {
	events := flag.Int64("events", 1<<20, "events per workload")
	reps := flag.Int("reps", 3, "measurement repetitions (best time kept)")
	out := flag.String("o", "", "write JSON report to this file (default stdout)")
	baseline := flag.String("baseline", "", "prior BENCH_sim.json to carry forward as the baseline")
	flag.Parse()

	rep := Report{
		Tool:       "cmd/simbench",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		EventTotal: *events,
	}
	rep.Current.TimerStorm = measure(*reps, timerStorm(*events))
	rep.Current.ContextSwitch = withSwitch(measure(*reps, contextSwitch(*events)))
	rep.Current.Pingpong = withSwitch(measure(*reps, pingpong(*events)))
	rep.Current.ParallelScale = measure(*reps, parallelScale(*events))
	rep.Current.TelemetryEmit = measure(*reps, telemetryEmit(*events))
	rep.Current.ReadAhead = measure(*reps, readahead(*events))

	if *baseline != "" {
		if err := attachBaseline(&rep, *baseline); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: baseline: %v\n", err)
			os.Exit(1)
		}
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "simbench: wrote %s (timer storm: %.0f events/s, %.3f allocs/event)\n",
		*out, rep.Current.TimerStorm.EventsPerSec, rep.Current.TimerStorm.AllocsPerEvent)
}

// attachBaseline loads a prior report and anchors Baseline to it: to
// the prior run's own baseline when it has one (so the pre-optimization
// anchor survives repeated `make bench`), else to its current numbers.
func attachBaseline(rep *Report, path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var old Report
	if err := json.Unmarshal(buf, &old); err != nil {
		return err
	}
	base := old.Current
	if old.Baseline != nil {
		base = *old.Baseline
	}
	rep.Baseline = &base
	rep.Speedup = &Speedup{
		TimerStormEventsPerSec: ratio(rep.Current.TimerStorm.EventsPerSec, base.TimerStorm.EventsPerSec),
		TimerStormAllocsRatio:  ratio(base.TimerStorm.AllocsPerEvent, rep.Current.TimerStorm.AllocsPerEvent),
		SwitchNsRatio:          ratio(base.ContextSwitch.NsPerSwitch, rep.Current.ContextSwitch.NsPerSwitch),
		PingpongNsRatio:        ratio(base.Pingpong.NsPerSwitch, rep.Current.Pingpong.NsPerSwitch),
		ParallelEventsPerSec:   ratio(rep.Current.ParallelScale.EventsPerSec, base.ParallelScale.EventsPerSec),
	}
	return nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// measure runs a workload reps times and keeps the fastest run (and its
// allocation count — per-event allocations are deterministic, so the
// fastest run is also representative).
func measure(reps int, w func() int64) Metrics {
	var best Metrics
	for r := 0; r < reps; r++ {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		events := w()
		host := time.Since(t0)
		runtime.ReadMemStats(&m1)
		cur := Metrics{
			Events:         events,
			HostNs:         host.Nanoseconds(),
			EventsPerSec:   float64(events) / host.Seconds(),
			Allocs:         m1.Mallocs - m0.Mallocs,
			AllocsPerEvent: float64(m1.Mallocs-m0.Mallocs) / float64(events),
		}
		if best.Events == 0 || cur.HostNs < best.HostNs {
			best = cur
		}
	}
	return best
}

// withSwitch fills NsPerSwitch for workloads where every event is a
// scheduler handoff.
func withSwitch(m Metrics) Metrics {
	m.NsPerSwitch = float64(m.HostNs) / float64(m.Events)
	return m
}

// timerStorm: 64 callback lanes, each rescheduling itself with a
// lane-dependent period until the event budget is spent. No processes,
// so this isolates the event queue: schedule, heap push/pop, dispatch.
func timerStorm(total int64) func() int64 {
	return func() int64 {
		s := sim.New(1)
		defer s.Close()
		const lanes = 64
		scheduled := int64(0)
		remaining := total - lanes
		for l := 0; l < lanes; l++ {
			period := sim.Time(l%7+1) * sim.Microsecond
			var fire func()
			fire = func() {
				if remaining <= 0 {
					return
				}
				remaining--
				scheduled++
				s.After(period, fire)
			}
			scheduled++
			s.After(period, fire)
		}
		if err := s.Run(); err != nil {
			fatal(err)
		}
		return scheduled
	}
}

// contextSwitch: 4 processes in a Sleep round-robin; every event parks
// one process goroutine and resumes another.
func contextSwitch(total int64) func() int64 {
	return func() int64 {
		s := sim.New(1)
		defer s.Close()
		const procs = 4
		per := total / procs
		for i := 0; i < procs; i++ {
			s.Spawn(fmt.Sprintf("t%d", i), func(p *sim.Proc) {
				for j := int64(0); j < per; j++ {
					p.Sleep(sim.Microsecond)
				}
			})
		}
		if err := s.Run(); err != nil {
			fatal(err)
		}
		return per * procs
	}
}

// pingpong: two processes alternating WaitQ wake/block — the blocking
// primitive path rather than the timer path.
func pingpong(total int64) func() int64 {
	return func() int64 {
		s := sim.New(1)
		defer s.Close()
		var qa, qb sim.WaitQ
		rounds := total / 2
		done := false
		// pong spawns first so it is already parked when ping wakes it.
		s.Spawn("pong", func(p *sim.Proc) {
			for {
				p.Block(&qb)
				if done {
					return
				}
				qa.WakeOne()
			}
		})
		s.Spawn("ping", func(p *sim.Proc) {
			for j := int64(0); j < rounds; j++ {
				qb.WakeOne()
				p.Block(&qa)
			}
			done = true
			qb.WakeOne()
		})
		if err := s.Run(); err != nil {
			fatal(err)
		}
		return rounds * 2
	}
}

// parallelScale: GOMAXPROCS independent timer storms through the
// runner's worker pool; aggregate throughput across all cores.
func parallelScale(total int64) func() int64 {
	return func() int64 {
		w := runtime.GOMAXPROCS(0)
		per := total / int64(w)
		counts, err := runner.Map(w, runner.Options{}, func(job int) (int64, error) {
			return timerStorm(per)(), nil
		})
		if err != nil {
			fatal(err)
		}
		var sum int64
		for _, c := range counts {
			sum += c
		}
		return sum
	}
}

// telemetryEmit: the zero-subscriber event-bus path. Every instrumented
// subsystem calls Bus.Emit unconditionally; this pins its cost (and its
// zero heap allocations) when no JSONL writer or trace is attached.
func telemetryEmit(total int64) func() int64 {
	return func() int64 {
		bus := &telemetry.Bus{}
		for i := int64(0); i < total; i++ {
			bus.Emit(telemetry.Event{
				T:      sim.Time(i),
				Kind:   telemetry.EvIOStart,
				Sector: i,
				Bytes:  8192,
				Depth:  i & 15,
			})
		}
		return total
	}
}

// readahead: the adaptive policy's Trigger path over 64 hot files. The
// access mix is fixed — four sequential confirmations to one random
// signal, a collapse every 1024 calls — so the detector map reaches
// steady state immediately and the number measures pure decision cost.
func readahead(total int64) func() int64 {
	return func() int64 {
		pol := prefetch.NewAdaptive(prefetch.AdaptiveConfig{})
		lim := prefetch.Limits{ClusterBlocks: 15, BlockBytes: 8192, FreePages: 4096, WriteHeadroom: 1 << 20}
		for i := int64(0); i < total; i++ {
			ino := int32(i & 63)
			if i&1023 == 1023 {
				pol.Random(ino)
				continue
			}
			pol.Trigger(ino, i%5 != 0, lim)
		}
		return total
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
	os.Exit(1)
}
