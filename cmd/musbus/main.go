// Command musbus runs the time-sharing workload under each paper
// configuration, reproducing the negative result: "the time-sharing
// benchmarks improved only slightly" because interactive work moves at
// most one block per transfer.
package main

import (
	"flag"
	"fmt"
	"os"

	"ufsclust"
	"ufsclust/internal/musbus"
	"ufsclust/internal/sim"
)

func main() {
	users := flag.Int("users", 8, "concurrent simulated users")
	minutes := flag.Int("minutes", 5, "virtual minutes to run")
	flag.Parse()

	prm := musbus.Params{Users: *users, Duration: sim.Time(*minutes) * 60 * sim.Second}
	fmt.Printf("MusBus-like time-sharing mix: %d users, %d virtual minutes\n", *users, *minutes)
	fmt.Printf("%-4s %12s %10s\n", "run", "iter/minute", "cpu")
	var base float64
	for _, rc := range ufsclust.Runs() {
		res, err := musbus.Run(rc, prm)
		if err != nil {
			fmt.Fprintf(os.Stderr, "musbus: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%-4s %12.1f %10v\n", res.Run, res.Throughput(), res.CPUTime)
		if rc.Name == "A" {
			base = res.Throughput()
		} else if base > 0 {
			// show relative change vs A inline
		}
	}
	fmt.Println("(paper: \"the time-sharing benchmarks improved only slightly\")")
}
