// Command cpustat reproduces Figure 12 (system CPU for a 16 MB mmap
// read, clustered vs legacy UFS) and, with -legacy, the introduction's
// sizing observation ("about half of a 12MIPS CPU was used to get half
// of the disk bandwidth").
package main

import (
	"flag"
	"fmt"
	"os"

	"ufsclust"
	"ufsclust/internal/cpubench"
)

func main() {
	fileMB := flag.Int("file", 16, "file size in MB")
	legacy := flag.Bool("legacy", false, "measure the legacy read(2) path instead (intro claim)")
	breakdown := flag.Bool("breakdown", false, "print per-category CPU breakdowns")
	flag.Parse()

	if *legacy {
		res, err := cpubench.ReadWithCopy(ufsclust.RunD(), *fileMB)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpustat: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("legacy UFS sequential read, %dMB file:\n", *fileMB)
		fmt.Printf("  %.0f KB/s at %.0f%% of a 12 MIPS CPU\n", res.RateKBs, res.CPUShare*100)
		fmt.Println("  (paper: about half the CPU for half of a ~1.5MB/s disk)")
		if *breakdown {
			fmt.Print(res.Report)
		}
		return
	}

	newRes, oldRes, err := cpubench.Figure12(*fileMB)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpustat: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("Figure 12: System CPU comparison")
	fmt.Print(cpubench.Format(newRes, oldRes))
	if *breakdown {
		fmt.Printf("\nnew (clustered):\n%s\nold (legacy):\n%s", newRes.Report, oldRes.Report)
	}
}
