// Command mkfs creates a UFS file system on a simulated-disk image
// file, with the paper's tuning knobs exposed: rotdelay (figure 4's
// interleave) and maxcontig (the cluster size).
//
//	mkfs -o image.ufs                      # 400MB drive, run-D tuning
//	mkfs -o image.ufs -rotdelay 0 -maxcontig 15   # run-A tuning
package main

import (
	"flag"
	"fmt"
	"os"

	"ufsclust/internal/disk"
	"ufsclust/internal/sim"
	"ufsclust/internal/ufs"
)

func main() {
	out := flag.String("o", "", "output image file (required)")
	cyls := flag.Int("cylinders", 1520, "disk cylinders")
	heads := flag.Int("heads", 8, "disk heads")
	spt := flag.Int("spt", 64, "sectors per track")
	rotdelay := flag.Int("rotdelay", 4, "rotational delay in ms (0 = contiguous allocation)")
	maxcontig := flag.Int("maxcontig", 1, "cluster size in blocks")
	minfree := flag.Int("minfree", 10, "reserved free space percent")
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	s := sim.New(0)
	defer s.Close()
	p := disk.DefaultParams()
	geom, err := disk.NewGeometry(*heads, 3600, disk.Zone{Cylinders: *cyls, SPT: *spt})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkfs: %v\n", err)
		os.Exit(2)
	}
	p.Geom = geom
	d := disk.New(s, "sd0", p)
	sb, err := ufs.Mkfs(d, ufs.MkfsOpts{
		Rotdelay:  *rotdelay,
		Maxcontig: *maxcontig,
		Minfree:   *minfree,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkfs: %v\n", err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkfs: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := d.DumpImage(f); err != nil {
		fmt.Fprintf(os.Stderr, "mkfs: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d cylinder groups, %d fragments (%.0fMB), bsize %d, fsize %d, rotdelay %dms, maxcontig %d\n",
		*out, sb.Ncg, sb.Size, float64(sb.Size)*float64(sb.Fsize)/(1<<20),
		sb.Bsize, sb.Fsize, sb.Rotdelay, sb.Maxcontig)
}
