// Command fstrace renders the paper's access-pattern figures from live
// execution of the engine: Figure 3 (legacy one-block read-ahead),
// Figure 6 (clustered reads, maxcontig 3), and Figure 7 (clustered
// writes, maxcontig 3).
package main

import (
	"flag"
	"fmt"
	"os"

	"ufsclust/internal/trace"
)

func main() {
	fig := flag.Int("fig", 0, "figure to render (3, 6, or 7; 0 = all)")
	flag.Parse()

	figs := map[int]func() (*trace.Figure, error){
		3: trace.Figure3,
		6: trace.Figure6,
		7: trace.Figure7,
	}
	order := []int{3, 6, 7}
	if *fig != 0 {
		if _, ok := figs[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "fstrace: no figure %d (have 3, 6, 7)\n", *fig)
			os.Exit(2)
		}
		order = []int{*fig}
	}
	for i, n := range order {
		f, err := figs[n]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fstrace: %v\n", err)
			os.Exit(1)
		}
		f.Render(os.Stdout)
		if i < len(order)-1 {
			fmt.Println()
		}
	}
}
