// Command simlint runs the repository's determinism and
// simulation-hygiene static analyzers (internal/analysis and
// internal/analysis/simflow) and prints one line per finding:
//
//	file:line:col: [rule] message
//
// Usage:
//
//	simlint [-rule detrand,blockpath,...] [-json] [-list] [packages]
//
// Packages default to ./... relative to the enclosing module. The exit
// status is 0 when the tree is clean, 1 when there are findings, and 2
// on usage or load errors. With -json each finding is one JSON object
// per line (sorted by position, byte-stable between runs); the human
// summary still goes to stderr. Findings are suppressed at the
// offending line (or the line above) with `// simlint:ignore <rules>`
// or, for panicpath's audited invariant assertions,
// `// simlint:invariant`; the stalesuppress rule reports directives
// that no longer suppress anything.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ufsclust/internal/analysis"
	_ "ufsclust/internal/analysis/simflow" // registers blockpath, buspure, timeflow
)

func main() {
	os.Exit(run())
}

func run() int {
	rule := flag.String("rule", "", "comma-separated analyzer names to run (default: all)")
	rulesAlias := flag.String("rules", "", "alias for -rule (kept for compatibility)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON, one object per line")
	list := flag.Bool("list", false, "list registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-rule r1,r2] [-json] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		names := make([]*analysis.Analyzer, len(analysis.Analyzers))
		copy(names, analysis.Analyzers)
		sort.Slice(names, func(i, j int) bool { return names[i].Name < names[j].Name })
		for _, a := range names {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	spec := *rule
	if spec == "" {
		spec = *rulesAlias
	}
	selected := analysis.Analyzers
	if spec != "" {
		selected = nil
		for _, name := range strings.Split(spec, ",") {
			name = strings.TrimSpace(name)
			a := analysis.FindAnalyzer(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "simlint: unknown rule %q\n", name)
				return 2
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(loader, patterns, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}

	counts := make(map[string]int)
	for _, d := range diags {
		if rel, err := filepath.Rel(wd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		counts[d.Rule]++
		if *jsonOut {
			enc, _ := json.Marshal(struct {
				File string `json:"file"`
				Line int    `json:"line"`
				Col  int    `json:"col"`
				Rule string `json:"rule"`
				Msg  string `json:"msg"`
			}{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg})
			fmt.Println(string(enc))
		} else {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		names := make([]string, 0, len(counts))
		for name := range counts {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, name := range names {
			parts[i] = fmt.Sprintf("%s=%d", name, counts[name])
		}
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s): %s\n", len(diags), strings.Join(parts, " "))
		return 1
	}
	return 0
}
