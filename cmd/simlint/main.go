// Command simlint runs the repository's determinism and
// simulation-hygiene static analyzers (internal/analysis) and prints
// one line per finding:
//
//	file:line:col: [rule] message
//
// Usage:
//
//	simlint [-rules detrand,maporder,...] [-list] [packages]
//
// Packages default to ./... relative to the enclosing module. The exit
// status is 0 when the tree is clean, 1 when there are findings, and 2
// on usage or load errors. Findings are suppressed at the offending
// line (or the line above) with `// simlint:ignore <rules>` or, for
// panicpath's audited invariant assertions, `// simlint:invariant`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ufsclust/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	rules := flag.String("rules", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-rules r1,r2] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected := analysis.Analyzers
	if *rules != "" {
		selected = nil
		for _, name := range strings.Split(*rules, ",") {
			name = strings.TrimSpace(name)
			a := analysis.FindAnalyzer(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "simlint: unknown rule %q\n", name)
				return 2
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(loader, patterns, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		if rel, err := filepath.Rel(wd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
