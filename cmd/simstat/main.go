// Command simstat runs one IObench cell and dumps the full telemetry of
// the measured phase: every registered counter, the disk latency and
// driver queue-depth histograms, and (with -jsonl) the structured event
// stream as JSON lines — the paper's figures are averages; this is the
// distribution view behind them.
//
// Usage:
//
//	simstat [-run A] [-kind FSR] [-ra fixed] [-vec auto] [-record B] [-stride B] [-file MB] [-ops N] [-mem MB] [-seed N] [-journal mode] [-jsonl file]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ufsclust"
	"ufsclust/internal/iobench"
	"ufsclust/internal/wal"
)

func main() {
	runName := flag.String("run", "A", "run configuration (A, B, C, D)")
	kindFlag := flag.String("kind", "FSR", "I/O type (FSR, FSU, FSW, FRR, FRU, FMX, FSTR)")
	raFlag := flag.String("ra", "fixed", "read-ahead policy (fixed, adaptive, off)")
	vecFlag := flag.String("vec", "auto", "Readv/Writev strategy (auto, naive, sieve, list)")
	record := flag.Int("record", 0, "FSTR record size in bytes (default the I/O size)")
	stride := flag.Int("stride", 0, "FSTR stride in bytes (default 4x record)")
	fileMB := flag.Int("file", 16, "benchmark file size in MB")
	ops := flag.Int("ops", 0, "random-phase operations (default file/8KB)")
	memMB := flag.Int("mem", 0, "override physical memory in MB (0 = run default)")
	seed := flag.Int64("seed", 0, "workload RNG seed")
	jmode := flag.String("journal", "off", "metadata journal (off, wal, wal-clustered)")
	jsonl := flag.String("jsonl", "", "write the measured phase's event stream to this file as JSON lines (- for stdout)")
	flag.Parse()

	var rc ufsclust.RunConfig
	found := false
	for _, r := range ufsclust.Runs() {
		if r.Name == *runName {
			rc, found = r, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "simstat: unknown run %q\n", *runName)
		os.Exit(2)
	}
	kind := iobench.Kind(strings.ToUpper(*kindFlag))
	ok := false
	for _, k := range iobench.AllKinds() {
		if k == kind {
			ok = true
		}
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "simstat: unknown kind %q\n", *kindFlag)
		os.Exit(2)
	}
	pol, ok := iobench.PolicyFactory(*raFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "simstat: unknown read-ahead policy %q\n", *raFlag)
		os.Exit(2)
	}
	vfac, ok := iobench.VecFactory(*vecFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "simstat: unknown vec strategy %q\n", *vecFlag)
		os.Exit(2)
	}

	prm := iobench.Params{FileMB: *fileMB, RandomOps: *ops, Seed: *seed, Policy: pol,
		Vec: vfac, Record: *record, Stride: *stride}
	switch *jmode {
	case "off":
	case "wal":
		prm.Journal = &wal.Config{}
	case "wal-clustered":
		prm.Journal = &wal.Config{Clustered: true}
	default:
		fmt.Fprintf(os.Stderr, "simstat: unknown journal mode %q\n", *jmode)
		os.Exit(2)
	}
	if *memMB > 0 {
		prm.MemBytes = int64(*memMB) << 20
	}
	if *jsonl == "-" {
		prm.EventW = os.Stdout
	} else if *jsonl != "" {
		f, err := os.Create(*jsonl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simstat: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		prm.EventW = f
	}

	res, snap, err := iobench.RunMeasured(rc, kind, prm)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simstat: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("run %s %s, %dMB file: %.0f KB/s over %v (cpu %v)\n",
		res.Run, res.Kind, *fileMB, res.RateKBs(), res.Elapsed, res.CPUTime)
	win := snap.Hist("core.ra_window")
	fmt.Printf("read-ahead %s: %d triggers, %d hits, %d wasted blocks, mean window %.1f blocks\n",
		*raFlag, snap.Get("core.ra_triggers"), snap.Get("core.ra_hits"),
		snap.Get("vm.ra_waste"), win.Mean())
	if calls := snap.Get("core.vec_calls"); calls > 0 {
		fmt.Printf("vectored %s: %d calls, %d runs (%d coalesced), %d sieve-waste bytes, %d list transfers\n",
			*vecFlag, calls, snap.Get("core.vec_runs"), snap.Get("core.vec_coalesced"),
			snap.Get("core.sieve_waste"), snap.Get("driver.vec_queued"))
	}
	if prm.Journal != nil {
		fmt.Printf("journal %s: %d commits (%d blocks, %d sectors), %d checkpoints (%d blocks), %d staged metadata writes\n",
			*jmode, snap.Get("wal.commits"), snap.Get("wal.commit_blocks"), snap.Get("wal.commit_sectors"),
			snap.Get("wal.checkpoints"), snap.Get("wal.checkpoint_blocks"), snap.Get("fs.journal_meta_writes"))
	}
	fmt.Println()
	snap.Format(os.Stdout)
}
