module ufsclust

go 1.22
