package ufsclust

import (
	"bytes"
	"strings"
	"testing"

	"ufsclust/internal/sim"
	"ufsclust/internal/wal"
)

// TestJournaledMachineEndToEnd drives a journaled machine through the
// facade: the log region is reserved at mkfs, metadata updates commit
// through the WAL, the data still round-trips, and the image checks
// clean.
func TestJournaledMachineEndToEnd(t *testing.T) {
	o := RunA().Options()
	WithJournal(wal.Config{})(&o)
	m, err := NewMachine(o)
	if err != nil {
		t.Fatal(err)
	}
	if m.WAL == nil {
		t.Fatal("WithJournal machine has no WAL")
	}
	if m.FS.SB.LogFrags == 0 {
		t.Fatal("journaled mkfs reserved no log region")
	}
	data := make([]byte, 256<<10)
	for i := range data {
		data[i] = byte(i * 13)
	}
	err = m.Run(func(p *sim.Proc) {
		f, err := m.Engine.Create(p, "/journaled")
		if err != nil {
			t.Error(err)
			return
		}
		f.Write(p, 0, data)
		f.Fsync(p)
		got := make([]byte, len(data))
		f.Read(p, 0, got)
		if !bytes.Equal(got, data) {
			t.Error("data corrupted through the journaled stack")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap := m.Snapshot(); snap.Get("wal.commits") == 0 {
		t.Error("fsync on a journaled machine committed nothing to the log")
	}
	m.FS.SyncImage()
	rep, err := m.Fsck()
	if err != nil || !rep.Clean() {
		t.Fatalf("fsck: %v %v", err, rep.Problems)
	}
}

// TestDefaultMachineHasNoJournal pins the default-off contract: without
// WithJournal there is no log region, no WAL, and no wal.* metrics —
// the pinned metrics manifest and every pre-journal golden stream
// depend on this.
func TestDefaultMachineHasNoJournal(t *testing.T) {
	m, err := NewMachineForRun(RunA())
	if err != nil {
		t.Fatal(err)
	}
	if m.WAL != nil {
		t.Error("default machine grew a WAL")
	}
	if m.FS.SB.LogFrags != 0 {
		t.Error("default mkfs reserved a log region")
	}
	for _, e := range m.Snapshot().Entries {
		if strings.HasPrefix(e.Name, "wal.") || e.Name == "fs.journal_meta_writes" {
			t.Errorf("default machine registered journal metric %s", e.Name)
		}
	}
}
